(** The model checker's scenario matrix: small closed configurations of
    the shootdown protocol, each runnable as one deterministic schedule
    under a [Sim.Explore] choice prefix.

    A scenario boots a fresh quiet machine (no cost jitter, no background
    bus traffic, no random spin misses — every run is a pure function of
    the choice prefix), attaches the consistency oracle, runs a short
    protocol exercise, and checks its safety properties:

    - the oracle's invariants at every shootdown-completion, batch-flush
      and quiescent point;
    - no CPU writes through a stale mapping after the initiator's
      protection update has completed (the paper section 5.1 property);
    - the run terminates (a wedged machine or an exhausted event budget
      is reported as a deadlock/livelock verdict);
    - scenario-specific liveness facts (lazy shootdowns really skipped,
      watchdog escalation really converging, batched deallocations really
      retired).

    The exhaustive driver lives in {!Explorer}; this module only knows
    how to run {e one} schedule. *)

type verdict =
  | Pass
  | Violation of { kind : string; detail : string }
      (** [kind] is one of ["oracle"], ["stale-write"], ["deadlock"],
          ["property"] or ["crash"]. *)

type outcome = {
  verdict : verdict;
  decisions : Sim.Explore.decision list;  (** the schedule actually run *)
  consulted : int;  (** choice sites consulted, incl. forced ones *)
  elided : int;  (** inert same-instant events excluded from ties *)
  truncated : bool;  (** the decision log overflowed [max_decisions] *)
}

type spec
(** A scenario: key, label, machine shape and protocol exercise. *)

val key : spec -> string
(** Stable [a-z0-9-] identifier used in JSON and on the command line. *)

val label : spec -> string

val cpus : spec -> requested:int -> int
(** Actual processor count used when the caller asks for [requested]
    (the clustered scenario needs at least two clusters of two). *)

val pages : spec -> int

val all : spec list
(** The full matrix: [plain], [pair] (two concurrent initiators on
    overlapping pages), [lazy] (lazy-evaluation skip then reuse),
    [batch] (gather-batched deallocation), [escalate] (IPI blackout
    driving the watchdog to escalation) and [cluster] (two-cluster
    hierarchical topology, multicast IPIs). *)

val find : string -> spec option
(** Look a scenario up by {!key}. *)

val run :
  ?mutant:Core.Pmap.mutant ->
  ?max_decisions:int ->
  ?observe:(Vm.Machine.t -> int -> unit) ->
  ?trace:Instrument.Trace.t ->
  cpus:int ->
  spec ->
  prefix:int array ->
  unit ->
  outcome
(** Run one schedule of [spec] on a fresh machine: replay [prefix] at
    the choice points, default to the baseline alternative beyond it.
    [cpus] is the {e requested} processor count (see {!cpus}); [mutant]
    (default [Core.Pmap.No_mutant]) seeds a protocol bug; [observe],
    if given, is installed as the explorer's choice observer with the
    machine in hand — the DFS driver fingerprints states through it;
    [trace] attaches the span tracer for counterexample rendering.
    Never raises: every failure mode is folded into the verdict. *)

val fingerprint : Vm.Machine.t -> string
(** Digest of the model-relevant machine state: pending events (as
    time-to-fire/label pairs), the protocol's per-CPU flags and phases,
    action-queue emptiness, pmap lock holders, every TLB's contents and
    the property-gating counters.  Thread-private progress (loop
    counters, memory word values) is deliberately abstracted away, which
    is what makes fingerprint pruning a heuristic state reduction — the
    explorer's [--no-prune] mode cross-checks it. *)

val mutant_name : Core.Pmap.mutant -> string
(** ["none"], ["skip-barrier"] or ["skip-responder-invalidate"]. *)

val mutant_of_string : string -> (Core.Pmap.mutant, string) result
