(* tlbshoot: command-line driver for the reproduction experiments.

     tlbshoot figure2 [--runs 10] [--max-procs 15] [--jobs N]
     tlbshoot table1 [--scale 100] [--jobs N]
     tlbshoot tables [--scale 100] [--jobs N]  (Tables 2-4, one data set)
     tlbshoot overhead [--scale 100] [--jobs N]
     tlbshoot ablations [--runs 3] [--jobs N]
     tlbshoot faults [--trials 3] [--children 6] [--jobs N] [--json]
     tlbshoot batch [--scale 100] [--jobs N] [--json]
     tlbshoot tester --children 4 [--no-consistency | --policy ...]
     tlbshoot trace [--workload tester] [--children 4] [--scale 10]
                    [--json] [--perfetto out.json]
     tlbshoot profile [--runs 10] [--max-procs 15] [--jobs N] [--json]
     tlbshoot explain [--top K] [--window US] [--runs 10] [--jobs N]
                      [--json] [--perfetto out.json]
     tlbshoot scale1024 [--runs 3] [--full] [--cluster-size 16] [--jobs N]
                        [--json]
     tlbshoot all [--scale 100] [--jobs N]

   --jobs fans independent trials over that many OCaml domains through
   Sim.Domain_pool; the default is the machine's recommended domain
   count and the output is bit-for-bit identical at any value (see
   docs/PARALLELISM.md). *)

open Cmdliner

let print_figure2 ~jobs ~runs ~max_procs =
  let r = Experiments.Figure2.run ~jobs ~runs_per_point:runs ~max_procs () in
  print_string (Experiments.Figure2.render r)

let print_table1 ~jobs ~scale =
  let t = Experiments.Table1.run ~jobs ~scale () in
  print_string (Experiments.Table1.render t)

let print_tables ~jobs ~scale =
  let apps = Experiments.Apps.run ~jobs ~scale () in
  print_string (Experiments.Table2.render (Experiments.Table2.of_apps apps));
  print_newline ();
  print_string (Experiments.Table3.render (Experiments.Table3.of_apps apps));
  print_newline ();
  print_string (Experiments.Table4.render (Experiments.Table4.of_apps apps))

let print_overhead ~jobs ~scale =
  let apps = Experiments.Apps.run ~jobs ~scale () in
  let fig = Experiments.Figure2.run ~jobs ~runs_per_point:3 () in
  let o =
    Experiments.Overhead.of_apps apps ~fit:fig.Experiments.Figure2.fit
  in
  print_string (Experiments.Overhead.render o)

let print_baselines ~jobs () =
  let b = Experiments.Baselines.run ~jobs () in
  print_string (Experiments.Baselines.render b)

let print_scaling ~jobs ~runs =
  let fig = Experiments.Figure2.run ~jobs ~runs_per_point:3 ~max_procs:12 () in
  let s =
    Experiments.Scaling.run ~jobs ~runs ~fit:fig.Experiments.Figure2.fit ()
  in
  print_string (Experiments.Scaling.render s)

let print_pools () =
  let p = Experiments.Pools.run () in
  print_string (Experiments.Pools.render p)

let print_ablations ~jobs ~runs =
  let a = Experiments.Ablations.run ~jobs ~runs () in
  print_string (Experiments.Ablations.render a)

let print_faults ~jobs ~trials ~children ~emit_json =
  let r = Experiments.Resilience.run ~jobs ~trials ~children () in
  if emit_json then
    print_string (Instrument.Json.to_string (Experiments.Resilience.to_json r))
  else print_string (Experiments.Resilience.render r);
  if not (Experiments.Resilience.all_green r) then exit 1

let print_batch ~jobs ~scale ~emit_json =
  let b = Experiments.Batching.run ~jobs ~scale () in
  if emit_json then
    print_string (Instrument.Json.to_string (Experiments.Batching.to_json b))
  else print_string (Experiments.Batching.render b);
  if not (Experiments.Batching.batching_helps b) then exit 1

let print_elide ~jobs ~scale ~emit_json =
  let e = Experiments.Elision.run ~jobs ~scale () in
  if emit_json then
    print_string (Instrument.Json.to_string (Experiments.Elision.to_json e))
  else print_string (Experiments.Elision.render e);
  if not (Experiments.Elision.elision_helps e) then exit 1

let run_tester ~children ~policy =
  let params =
    match policy with
    | "shootdown" -> Sim.Params.default
    | "none" -> { Sim.Params.default with consistency = Sim.Params.No_consistency }
    | "timer" ->
        { Sim.Params.default with consistency = Sim.Params.Timer_flush 5_000.0 }
    | "hw" ->
        {
          Sim.Params.default with
          consistency = Sim.Params.Hw_remote;
          tlb_interlocked_refmod = true;
        }
    | "deferred" ->
        { Sim.Params.default with consistency = Sim.Params.Deferred_free 2_000.0 }
    | other -> failwith (Printf.sprintf "unknown policy %S" other)
  in
  let r = Workloads.Tlb_tester.run_fresh ~params ~children ~seed:42L () in
  Printf.printf
    "policy=%s children=%d consistent=%b violations=%d processors=%d \
     initiator=%.0f us increments=%d\n"
    policy children r.Workloads.Tlb_tester.consistent
    r.Workloads.Tlb_tester.violations r.Workloads.Tlb_tester.processors
    r.Workloads.Tlb_tester.initiator_elapsed
    r.Workloads.Tlb_tester.increments_total

(* Replay a workload with the structured span tracer attached and dump
   the stream — the machine-readable "anatomy of a shootdown".  With
   --perfetto the same stream is written as a Chrome trace-event file
   (one track per CPU) loadable in ui.perfetto.dev; the tester path also
   attaches the contention profiler so the timeline carries the
   prof.<category> attribution slices. *)
let run_trace ~workload ~children ~scale ~emit_json ~perfetto =
  let tr = Instrument.Trace.create () in
  (match String.lowercase_ascii workload with
  | "tester" ->
      let machine = Vm.Machine.create ~params:Sim.Params.default () in
      machine.Vm.Machine.ctx.Core.Pmap.trace <- Some tr;
      Sim.Engine.set_tracer machine.Vm.Machine.eng (Some tr);
      let profile =
        Instrument.Profile.create ~ncpus:Sim.Params.default.Sim.Params.ncpus ()
      in
      Instrument.Profile.set_tracer profile (Some tr);
      Vm.Machine.attach_profile machine profile;
      ignore (Workloads.Tlb_tester.run machine ~children ())
  | "mach" ->
      ignore
        (Workloads.Mach_build.run ~trace:tr
           ~cfg:(Experiments.Apps.scaled_mach scale) ())
  | "parthenon" ->
      ignore
        (Workloads.Parthenon.run ~trace:tr
           ~cfg:(Experiments.Apps.scaled_parthenon scale) ())
  | "agora" ->
      ignore
        (Workloads.Agora.run ~trace:tr
           ~cfg:(Experiments.Apps.scaled_agora scale) ())
  | "camelot" ->
      ignore
        (Workloads.Camelot.run ~trace:tr
           ~cfg:(Experiments.Apps.scaled_camelot scale) ())
  | other ->
      failwith
        (Printf.sprintf
           "unknown workload %S (tester|mach|parthenon|agora|camelot)" other));
  (* A capped ring that wrapped lost its oldest spans: say so on stderr
     at report time, whatever the output format, so a truncated stream
     is never mistaken for a complete one. *)
  (match Instrument.Trace.dropped_warning tr with
  | Some w -> prerr_endline w
  | None -> ());
  (match perfetto with
  | Some file ->
      let oc = open_out file in
      output_string oc (Instrument.Perfetto.to_string tr);
      close_out oc;
      Printf.printf "wrote %d spans (%d dropped) to %s\n"
        (Instrument.Trace.length tr)
        (Instrument.Trace.dropped tr)
        file
  | None ->
      if emit_json then
        print_string
          (Instrument.Json.to_string (Instrument.Trace.report_json tr))
      else print_string (Instrument.Trace.render tr))

(* The knee decomposition: figure2 with the contention profiler attached.
   Exits 1 unless the knee invariant holds (CI gate). *)
let print_profile ~jobs ~runs ~max_procs ~emit_json =
  let k = Experiments.Knee.run ~jobs ~runs_per_point:runs ~max_procs () in
  if emit_json then
    print_string (Instrument.Json.to_string (Experiments.Knee.to_json k))
  else print_string (Experiments.Knee.render k);
  if not (Experiments.Knee.knee_holds k) then exit 1

(* The tail analyzer (docs/TAIL.md): figure2 with the per-round flight
   recorder and windowed timeline attached; explains which phase — and
   which straggler responder — makes the slowest rounds slow.  Exits 1
   unless the tail gate holds: zero unattributed time everywhere, oracle
   green, and the top-K critical path is ack-wait at 16 CPUs but not at
   4 (CI gate). *)
let print_explain ~jobs ~runs ~max_procs ~top ~window ~emit_json ~perfetto =
  let t =
    Experiments.Tail.run ~jobs ~runs_per_point:runs ~max_procs ~top_k:top
      ~window ()
  in
  (match perfetto with
  | None -> ()
  | Some file -> (
      (* the largest point carries the interesting tail: write its
         timeline as Perfetto counter tracks *)
      let hi =
        List.fold_left
          (fun m (p : Experiments.Tail.point) ->
            Stdlib.max m p.Experiments.Tail.cpus)
          0 t.Experiments.Tail.points
      in
      match Experiments.Tail.find_point t ~cpus:hi with
      | Some p -> (
          match Instrument.Flight.timeline p.Experiments.Tail.flight with
          | Some tl ->
              let oc = open_out file in
              output_string oc (Instrument.Perfetto.timeline_to_string tl);
              close_out oc;
              Printf.printf "wrote timeline counter tracks (%d cpus) to %s\n"
                hi file
          | None -> ())
      | None -> ()));
  if emit_json then
    print_string (Instrument.Json.to_string (Experiments.Tail.to_json t))
  else print_string (Experiments.Tail.render t);
  if not (Experiments.Tail.gate_holds t) then exit 1

(* The hierarchical scale sweep (docs/TOPOLOGY.md): Figure 2 at
   4..1024 CPUs on a clustered machine, with the numaPTE-style
   cluster-targeted-shootdown ablation.  Exits 1 unless the gate holds
   (CI/nightly gate). *)
let print_scale1024 ~jobs ~runs ~full ~cluster_size ~emit_json =
  let scales =
    if full then Experiments.Scale1024.full_scales
    else Experiments.Scale1024.quick_scales
  in
  let s =
    Experiments.Scale1024.run ~jobs ~scales ~runs_per_point:runs ~cluster_size
      ()
  in
  if emit_json then
    print_string (Instrument.Json.to_string (Experiments.Scale1024.to_json s))
  else print_string (Experiments.Scale1024.render s);
  if not (Experiments.Scale1024.gate_holds s) then exit 1

(* The model checker (docs/MODELCHECK.md): exhaustively explore the
   shootdown protocol's small-configuration schedule space.  On a
   violation, write a replayable counterexample and exit 1; --replay
   re-runs a saved counterexample, optionally rendering it as a
   Perfetto timeline. *)
let run_check ~cpus ~depth ~max_schedules ~no_prune ~mutant ~scenario
    ~emit_json ~cex_out ~replay ~perfetto =
  match replay with
  | Some file -> (
      let text = In_channel.with_open_text file In_channel.input_all in
      match Check.Explorer.parse_counterexample text with
      | Error msg ->
          prerr_endline msg;
          exit 2
      | Ok r ->
          let trace =
            match perfetto with
            | Some _ -> Some (Instrument.Trace.create ())
            | None -> None
          in
          let out = Check.Explorer.run_replay ?trace r in
          (match (perfetto, trace) with
          | Some file, Some tr ->
              let oc = open_out file in
              output_string oc (Instrument.Perfetto.to_string tr);
              close_out oc;
              Printf.printf "wrote %d spans to %s\n"
                (Instrument.Trace.length tr)
                file
          | _ -> ());
          (match out.Check.Scenario.verdict with
          | Check.Scenario.Pass ->
              Printf.printf
                "replay: PASS (%d decisions) — the violation did not \
                 reproduce\n"
                (List.length out.Check.Scenario.decisions);
              exit 1
          | Check.Scenario.Violation { kind; detail } ->
              Printf.printf "replay: %s violation reproduced\n  %s\n" kind
                detail);
          exit 0)
  | None -> (
      let mutant =
        match Check.Scenario.mutant_of_string mutant with
        | Ok m -> m
        | Error msg ->
            prerr_endline msg;
            exit 2
      in
      let t =
        Experiments.Modelcheck.run ~cpus ~depth ~max_schedules
          ~prune:(not no_prune) ~mutant ?scenario ()
      in
      if emit_json then
        print_string (Instrument.Json.to_string (Experiments.Modelcheck.to_json t))
      else print_string (Experiments.Modelcheck.render t);
      match Experiments.Modelcheck.first_violation t with
      | None -> ()
      | Some { result = r } ->
          let oc = open_out cex_out in
          output_string oc
            (Instrument.Json.to_string (Check.Explorer.counterexample_json r));
          close_out oc;
          if not emit_json then
            Printf.printf "counterexample written to %s (tlbshoot check \
                           --replay %s)\n"
              cex_out cex_out;
          exit 1)

let print_all ~jobs ~scale ~runs =
  print_figure2 ~jobs ~runs ~max_procs:15;
  print_newline ();
  print_table1 ~jobs ~scale;
  print_newline ();
  print_tables ~jobs ~scale;
  print_newline ();
  print_overhead ~jobs ~scale;
  print_newline ();
  print_ablations ~jobs ~runs:2

(* --- cmdliner wiring --- *)

let scale_arg =
  Arg.(value & opt int 100 & info [ "scale" ] ~doc:"Workload scale percent.")

let jobs_arg =
  Arg.(
    value
    & opt int (Sim.Domain_pool.default_jobs ())
    & info [ "jobs" ]
        ~doc:
          "Trial-level parallelism: independent simulations fan out over \
           this many OCaml domains (1 = sequential; output is identical \
           either way).")

let runs_arg =
  Arg.(value & opt int 10 & info [ "runs" ] ~doc:"Runs per data point.")

let max_procs_arg =
  Arg.(value & opt int 15 & info [ "max-procs" ] ~doc:"Largest processor count.")

let children_arg =
  Arg.(value & opt int 4 & info [ "children" ] ~doc:"Tester child threads.")

let policy_arg =
  Arg.(
    value
    & opt string "shootdown"
    & info [ "policy" ] ~doc:"Consistency policy: shootdown|none|timer|hw|deferred.")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let figure2_cmd =
  cmd "figure2" "Reproduce Figure 2 (basic shootdown costs)"
    Term.(
      const (fun jobs runs max_procs -> print_figure2 ~jobs ~runs ~max_procs)
      $ jobs_arg $ runs_arg $ max_procs_arg)

let table1_cmd =
  cmd "table1" "Reproduce Table 1 (lazy evaluation)"
    Term.(const (fun jobs scale -> print_table1 ~jobs ~scale) $ jobs_arg $ scale_arg)

let tables_cmd =
  cmd "tables" "Reproduce Tables 2-4 (application shootdown statistics)"
    Term.(const (fun jobs scale -> print_tables ~jobs ~scale) $ jobs_arg $ scale_arg)

let overhead_cmd =
  cmd "overhead" "Reproduce the section 8 overhead analysis"
    Term.(
      const (fun jobs scale -> print_overhead ~jobs ~scale)
      $ jobs_arg $ scale_arg)

let baselines_cmd =
  cmd "baselines" "Compare the section 3 consistency policies"
    Term.(const (fun jobs -> print_baselines ~jobs ()) $ jobs_arg)

let scaling_cmd =
  cmd "scaling" "Validate the section 8 extrapolation on larger machines"
    Term.(
      const (fun jobs runs -> print_scaling ~jobs ~runs)
      $ jobs_arg
      $ Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Runs per point."))

let pools_cmd =
  cmd "pools" "Measure the section 8 pool-structured-kernel proposal"
    Term.(const print_pools $ const ())

let ablations_cmd =
  cmd "ablations" "Run the section 9 hardware-option ablations"
    Term.(
      const (fun jobs runs -> print_ablations ~jobs ~runs)
      $ jobs_arg
      $ Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Runs per point."))

let faults_cmd =
  let trials_arg =
    Arg.(value & opt int 3 & info [ "trials" ] ~doc:"Trials per fault plan.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the sweep counters as a JSON metrics report.")
  in
  cmd "faults"
    "Run the resilience sweep: tester + consistency oracle under injected \
     faults (exits 1 on any violation)"
    Term.(
      const (fun jobs trials children emit_json ->
          print_faults ~jobs ~trials ~children ~emit_json)
      $ jobs_arg $ trials_arg $ children_arg $ json_arg)

let batch_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the ablation counters as a JSON metrics report.")
  in
  cmd "batch"
    "Run the batching ablation: gather batching x lazy evaluation over the \
     Mach build and Parthenon, oracle attached (exits 1 unless batching \
     reduces Mach consistency rounds with every cell green)"
    Term.(
      const (fun jobs scale emit_json -> print_batch ~jobs ~scale ~emit_json)
      $ jobs_arg $ scale_arg $ json_arg)

let elide_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the ablation counters as a JSON metrics report.")
  in
  cmd "elide"
    "Run the flush-elision ablation: generation-tagged elision x lazy \
     evaluation x gather batching over the mmap-churn server and \
     Parthenon, oracle attached (exits 1 unless elision halves churn \
     consistency rounds in every combination, leaves Parthenon untouched, \
     and every cell is green)"
    Term.(
      const (fun jobs scale emit_json -> print_elide ~jobs ~scale ~emit_json)
      $ jobs_arg $ scale_arg $ json_arg)

let tester_cmd =
  cmd "tester" "Run the section 5.1 consistency tester once"
    Term.(
      const (fun children policy -> run_tester ~children ~policy)
      $ children_arg $ policy_arg)

let trace_cmd =
  let workload_arg =
    Arg.(
      value
      & opt string "tester"
      & info [ "workload" ]
          ~doc:"Workload to replay: tester|mach|parthenon|agora|camelot.")
  in
  let trace_scale_arg =
    Arg.(
      value & opt int 10
      & info [ "scale" ] ~doc:"Workload scale percent (applications only).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the span stream as a JSON report (schema \
             tlbshoot-spans-v1, with emitted/dropped counters).")
  in
  let perfetto_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write the stream as a Chrome trace-event file (one track per \
             CPU) loadable in ui.perfetto.dev.")
  in
  cmd "trace"
    "Replay a workload with the span tracer attached and dump the stream"
    Term.(
      const (fun workload children scale emit_json perfetto ->
          run_trace ~workload ~children ~scale ~emit_json ~perfetto)
      $ workload_arg $ children_arg $ trace_scale_arg $ json_arg
      $ perfetto_arg)

let profile_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the decomposition as a JSON report (tlbshoot-knee-v1).")
  in
  cmd "profile"
    "Run the Figure 2 sweep with the contention profiler attached and \
     decompose where the time goes per CPU count (exits 1 unless the \
     bus-wait share rises between 4 and 16 CPUs)"
    Term.(
      const (fun jobs runs max_procs emit_json ->
          print_profile ~jobs ~runs ~max_procs ~emit_json)
      $ jobs_arg $ runs_arg $ max_procs_arg $ json_arg)

let explain_cmd =
  let top_arg =
    Arg.(
      value
      & opt int Instrument.Flight.default_top_k
      & info [ "top" ] ~docv:"K"
          ~doc:"Slowest rounds retained per recorder merge.")
  in
  let window_arg =
    Arg.(
      value
      & opt float Instrument.Timeline.default_window
      & info [ "window" ] ~docv:"US"
          ~doc:"Timeline window width in simulated microseconds.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the analysis as a JSON report (tlbshoot-tail-v1, \
             embedding tlbshoot-flight-v1 and tlbshoot-timeline-v1).")
  in
  let perfetto_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write the largest point's timeline as Perfetto counter \
             tracks (one track per series) loadable in ui.perfetto.dev.")
  in
  cmd "explain"
    "Run the Figure 2 sweep with the per-round flight recorder attached \
     and explain the tail: exact per-phase blame, straggler responders, \
     top-K slowest rounds, windowed rates (exits 1 unless blame sums \
     exactly to round latency everywhere and the top-K critical path is \
     responder ack-wait at 16 CPUs but not at 4)"
    Term.(
      const (fun jobs runs max_procs top window emit_json perfetto ->
          print_explain ~jobs ~runs ~max_procs ~top ~window ~emit_json
            ~perfetto)
      $ jobs_arg $ runs_arg $ max_procs_arg $ top_arg $ window_arg $ json_arg
      $ perfetto_arg)

let scale1024_cmd =
  let runs_arg =
    Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Runs per scale point.")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Sweep the full 4..1024-CPU ladder (nightly); default is the \
             quick 4/16/64/256 gate.")
  in
  let cluster_size_arg =
    Arg.(
      value & opt int 16
      & info [ "cluster-size" ] ~doc:"CPUs per cluster bus.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the sweep as a JSON report (tlbshoot-scale-v1).")
  in
  cmd "scale1024"
    "Run the Figure 2 sweep on a hierarchical 64-1024-CPU NUMA machine \
     and compare against the paper's 430 us + 55 us/processor \
     extrapolation (exits 1 unless the super-linear-deviation and \
     cluster-targeted-shootdown gates hold)"
    Term.(
      const (fun jobs runs full cluster_size emit_json ->
          print_scale1024 ~jobs ~runs ~full ~cluster_size ~emit_json)
      $ jobs_arg $ runs_arg $ full_arg $ cluster_size_arg $ json_arg)

let check_cmd =
  let cpus_arg =
    Arg.(
      value & opt int 2
      & info [ "cpus" ]
          ~doc:
            "Requested processors per scenario (scenarios may round up; \
             the clustered one needs at least 4).")
  in
  let depth_arg =
    Arg.(
      value & opt int 16
      & info [ "depth" ]
          ~doc:
            "Expansion bound: only the first $(docv) choice positions of \
             a schedule branch.")
  in
  let max_schedules_arg =
    Arg.(
      value & opt int 600
      & info [ "max-schedules" ] ~doc:"Schedule cap per scenario.")
  in
  let no_prune_arg =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable fingerprint state pruning (slower, but exact — used \
             to cross-check the reduction).")
  in
  let mutant_arg =
    Arg.(
      value & opt string "none"
      & info [ "mutant" ]
          ~doc:
            "Seed a protocol bug: none|skip-barrier|\
             skip-responder-invalidate|skip-generation-bump.  The mutants \
             must produce counterexamples; the healthy protocol must not.")
  in
  let scenario_arg =
    Arg.(
      value & opt (some string) None
      & info [ "scenario" ]
          ~doc:
            "Run one scenario instead of the whole matrix: \
             plain|pair|lazy|batch|elide|escalate|cluster.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the matrix as JSON (tlbshoot-check-v1).")
  in
  let cex_arg =
    Arg.(
      value
      & opt string "check_counterexample.json"
      & info [ "counterexample" ] ~docv:"FILE"
          ~doc:"Where to write the counterexample on a violation.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-run a saved counterexample instead of exploring; exits 0 \
             iff the violation reproduces.")
  in
  let perfetto_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "With --replay: render the replayed schedule as a Chrome \
             trace-event file for ui.perfetto.dev.")
  in
  cmd "check"
    "Model-check the shootdown protocol: exhaustively explore the \
     interleavings of small configurations (event tie-breaks, spinlock \
     acquisition order, interrupt delivery timing) and verify the \
     consistency oracle, the stale-write property and deadlock freedom \
     on every schedule (exits 1 on violation, with a replayable \
     counterexample)"
    Term.(
      const (fun cpus depth max_schedules no_prune mutant scenario emit_json
                cex_out replay perfetto ->
          run_check ~cpus ~depth ~max_schedules ~no_prune ~mutant ~scenario
            ~emit_json ~cex_out ~replay ~perfetto)
      $ cpus_arg $ depth_arg $ max_schedules_arg $ no_prune_arg $ mutant_arg
      $ scenario_arg $ json_arg $ cex_arg $ replay_arg $ perfetto_arg)

let all_cmd =
  cmd "all" "Run every experiment"
    Term.(
      const (fun jobs scale runs -> print_all ~jobs ~scale ~runs)
      $ jobs_arg $ scale_arg $ runs_arg)

let () =
  let info =
    Cmd.info "tlbshoot" ~version:"1.0"
      ~doc:
        "Reproduction of 'Translation Lookaside Buffer Consistency: A \
         Software Approach' (ASPLOS 1989)"
  in
  let group =
    Cmd.group info
      [
        figure2_cmd;
        table1_cmd;
        tables_cmd;
        overhead_cmd;
        baselines_cmd;
        scaling_cmd;
        pools_cmd;
        ablations_cmd;
        faults_cmd;
        batch_cmd;
        elide_cmd;
        tester_cmd;
        trace_cmd;
        profile_cmd;
        explain_cmd;
        scale1024_cmd;
        check_cmd;
        all_cmd;
      ]
  in
  exit (Cmd.eval group)
